// Command experiments regenerates every table and figure of the paper's
// evaluation section (Figures 2-8, Tables I-II) against the simulated
// substrate. Absolute times are simulated seconds, not the paper's
// testbed wall-clock; the comparative shapes are what reproduce.
//
// Usage:
//
//	experiments -exp all            # everything (several minutes)
//	experiments -exp fig2,fig3      # static convergence + totals
//	experiments -exp table1         # time breakdown
//	experiments -exp fig8 -reps 10  # RL comparison, 10 repetitions
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dbabandits/internal/harness"
)

var (
	seed  = flag.Int64("seed", 1, "experiment seed")
	sf    = flag.Float64("sf", 10, "scale factor for scalable benchmarks")
	rows  = flag.Int("rows", 5000, "max stored rows per table")
	reps  = flag.Int("reps", 3, "repetitions for the RL comparison (paper: 10)")
	quick = flag.Bool("quick", false, "shrink rounds for a fast smoke run")
)

func main() {
	exps := flag.String("exp", "all", "comma-separated: fig2,fig3,fig4,fig5,fig6,fig7,table1,table2,fig8,all")
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	// Figures 2-7 and Table I share their runs: cache them per regime.
	var staticRuns, shiftRuns, randomRuns map[string][]*harness.RunResult
	if all || want["fig2"] || want["fig3"] || want["table1"] {
		staticRuns = runRegime(harness.Static)
	}
	if all || want["fig4"] || want["fig5"] || want["table1"] {
		shiftRuns = runRegime(harness.Shifting)
	}
	if all || want["fig6"] || want["fig7"] || want["table1"] {
		randomRuns = runRegime(harness.Random)
	}

	if all || want["fig2"] {
		renderConvergenceSet("Figure 2 — static convergence", staticRuns)
	}
	if all || want["fig3"] {
		harness.RenderTotals(os.Stdout, "Figure 3 — static totals", staticRuns)
		renderSpeedups(staticRuns)
	}
	if all || want["fig4"] {
		renderConvergenceSet("Figure 4 — dynamic shifting convergence", shiftRuns)
	}
	if all || want["fig5"] {
		harness.RenderTotals(os.Stdout, "Figure 5 — dynamic shifting totals", shiftRuns)
		renderSpeedups(shiftRuns)
	}
	if all || want["fig6"] {
		renderConvergenceSet("Figure 6 — dynamic random convergence", randomRuns)
	}
	if all || want["fig7"] {
		harness.RenderTotals(os.Stdout, "Figure 7 — dynamic random totals", randomRuns)
		renderSpeedups(randomRuns)
	}
	if all || want["table1"] {
		harness.RenderTable1(os.Stdout, map[harness.Regime]map[string][]*harness.RunResult{
			harness.Static:   staticRuns,
			harness.Shifting: shiftRuns,
			harness.Random:   randomRuns,
		})
		fmt.Println()
	}
	if all || want["table2"] {
		table2()
	}
	if all || want["fig8"] {
		fig8()
	}
}

// rounds returns the regime's round count, shrunk in quick mode.
func rounds(regime harness.Regime) int {
	if *quick {
		if regime == harness.Shifting {
			return 8
		}
		return 5
	}
	if regime == harness.Shifting {
		return 80
	}
	return 25
}

// runRegime executes NoIndex/PDTool/MAB on all five benchmarks.
func runRegime(regime harness.Regime) map[string][]*harness.RunResult {
	out := map[string][]*harness.RunResult{}
	for _, bench := range []string{"ssb", "tpch", "tpch-skew", "tpcds", "imdb"} {
		opts := harness.Options{
			Benchmark:     bench,
			Regime:        regime,
			Rounds:        rounds(regime),
			ScaleFactor:   *sf,
			MaxStoredRows: *rows,
			Seed:          *seed,
		}
		if bench == "tpcds" && regime == harness.Random {
			// The paper caps PDTool at 1 hour per invocation here.
			opts.PDToolTimeLimitSec = 3600
		}
		exp, err := harness.New(opts)
		if err != nil {
			fatal(err)
		}
		for _, kind := range []harness.TunerKind{harness.NoIndex, harness.PDTool, harness.MAB} {
			res, err := exp.Run(kind)
			if err != nil {
				fatal(fmt.Errorf("%s/%s/%s: %w", bench, regime, kind, err))
			}
			out[bench] = append(out[bench], res)
		}
		fmt.Fprintf(os.Stderr, "[done] %s %s\n", bench, regime)
	}
	return out
}

func renderConvergenceSet(title string, runs map[string][]*harness.RunResult) {
	for _, bench := range []string{"ssb", "tpch", "tpch-skew", "tpcds", "imdb"} {
		harness.RenderConvergence(os.Stdout, fmt.Sprintf("%s — %s", title, bench), runs[bench])
		fmt.Println()
	}
}

// renderSpeedups prints MAB's relative improvement over PDTool per
// benchmark, the headline numbers of the paper's text.
func renderSpeedups(runs map[string][]*harness.RunResult) {
	fmt.Println("# MAB speed-up vs PDTool (total end-to-end time)")
	for _, bench := range []string{"ssb", "tpch", "tpch-skew", "tpcds", "imdb"} {
		var pd, mab float64
		for _, r := range runs[bench] {
			_, _, _, total := r.Totals()
			switch r.Tuner {
			case harness.PDTool:
				pd = total
			case harness.MAB:
				mab = total
			}
		}
		fmt.Printf("  %-10s %s\n", bench, harness.Speedup(pd, mab))
	}
	fmt.Println()
}

func table2() {
	var rowsOut []harness.Table2Row
	sfs := []float64{1, 10, 100}
	if *quick {
		sfs = []float64{1, 10}
	}
	for _, bench := range []string{"tpch", "tpch-skew"} {
		for _, factor := range sfs {
			exp, err := harness.New(harness.Options{
				Benchmark:     bench,
				Regime:        harness.Static,
				Rounds:        rounds(harness.Static),
				ScaleFactor:   factor,
				MaxStoredRows: *rows,
				Seed:          *seed,
			})
			if err != nil {
				fatal(err)
			}
			row := harness.Table2Row{Benchmark: bench, SF: factor}
			for _, kind := range []harness.TunerKind{harness.PDTool, harness.MAB} {
				res, err := exp.Run(kind)
				if err != nil {
					fatal(err)
				}
				_, _, _, total := res.Totals()
				if kind == harness.PDTool {
					row.PDToolMin = total / 60
				} else {
					row.MABMin = total / 60
				}
			}
			rowsOut = append(rowsOut, row)
			fmt.Fprintf(os.Stderr, "[done] table2 %s sf=%.0f\n", bench, factor)
		}
	}
	harness.RenderTable2(os.Stdout, rowsOut)
	fmt.Println()
}

func fig8() {
	fig8Rounds := 100
	if *quick {
		fig8Rounds = 10
	}
	for _, bench := range []string{"tpch", "tpch-skew"} {
		methodRuns := map[harness.TunerKind][]*harness.RunResult{}
		for _, kind := range []harness.TunerKind{harness.PDTool, harness.MAB, harness.DDQN, harness.DDQNSC} {
			n := *reps
			if kind == harness.PDTool || kind == harness.MAB {
				// Deterministic methods need no repetition (the paper
				// highlights exactly this stability).
				n = 1
			}
			for rep := 0; rep < n; rep++ {
				exp, err := harness.New(harness.Options{
					Benchmark:     bench,
					Regime:        harness.Static,
					Rounds:        fig8Rounds,
					ScaleFactor:   *sf,
					MaxStoredRows: *rows,
					Seed:          *seed,
					DDQNSeed:      int64(rep) + 1,
				})
				if err != nil {
					fatal(err)
				}
				res, err := exp.Run(kind)
				if err != nil {
					fatal(err)
				}
				methodRuns[kind] = append(methodRuns[kind], res)
			}
			fmt.Fprintf(os.Stderr, "[done] fig8 %s %s\n", bench, kind)
		}
		var stats []harness.Fig8Stats
		for _, kind := range []harness.TunerKind{harness.PDTool, harness.MAB, harness.DDQN, harness.DDQNSC} {
			stats = append(stats, harness.SummariseRuns(kind, methodRuns[kind]))
		}
		harness.RenderFig8(os.Stdout, fmt.Sprintf("Figure 8 — %s (static, %d rounds)", bench, fig8Rounds), stats)
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
