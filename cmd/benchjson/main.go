// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document mapping benchmark name → metrics (ns/op, B/op,
// allocs/op, plus any custom ReportMetric units), so perf numbers can be
// committed as BENCH_<sha>.json files and diffed across commits. See the
// `make bench` target and the README's Performance section.
//
// The GOMAXPROCS suffix (-8 etc.) is stripped from benchmark names and
// map keys are emitted sorted, so two captures of the same tree differ
// only where the numbers do.
//
// Repeatable -label key=value flags annotate the capture (emitted under
// "labels"); `make bench` uses them to record the ridge backend the
// recommend-loop benchmarks ran under, e.g.
//
//	go test -bench ... | benchjson -label ridge=sm > BENCH_abc1234.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"os"
	"regexp"
	"strconv"
	"strings"

	"dbabandits/internal/cli"
)

// benchLine matches one result row: name, run count, then (value, unit)
// metric pairs, e.g.
//
//	BenchmarkScoresTPCDS-8   	    1234	    987654 ns/op	  112 B/op	   3 allocs/op
var procSuffix = regexp.MustCompile(`-\d+$`)

type document struct {
	Goos       string                        `json:"goos,omitempty"`
	Goarch     string                        `json:"goarch,omitempty"`
	CPU        string                        `json:"cpu,omitempty"`
	Labels     map[string]string             `json:"labels,omitempty"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func main() {
	doc := document{Benchmarks: map[string]map[string]float64{}}
	labels := cli.Labels(flag.CommandLine)
	flag.Parse()
	doc.Labels = labels()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		runs, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		metrics := map[string]float64{"runs": runs}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
		doc.Benchmarks[name] = metrics
	}
	if err := sc.Err(); err != nil {
		cli.Fatal("benchjson", err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		cli.Fatal("benchjson", err)
	}
}
