// Command benchjson converts `go test -bench` output on stdin into the
// stable JSON capture format of internal/benchfmt (benchmark name →
// metrics: ns/op, B/op, allocs/op, plus any custom ReportMetric units),
// so perf numbers can be committed as BENCH_<sha>.json files and diffed
// across commits with cmd/benchdiff. See the `make bench` target and
// the README's Performance section.
//
// The GOMAXPROCS suffix (-8 etc.) is stripped from benchmark names and
// map keys are emitted sorted, so two captures of the same tree differ
// only where the numbers do.
//
// Repeatable -label key=value flags annotate the capture (emitted under
// "labels"); `make bench` uses them to record the ridge backend and
// scoring worker counts the recommend-loop benchmarks ran under, e.g.
//
//	go test -bench ... | benchjson -label ridge=sm > BENCH_abc1234.json
package main

import (
	"encoding/json"
	"flag"
	"os"

	"dbabandits/internal/benchfmt"
	"dbabandits/internal/cli"
)

func main() {
	labels := cli.Labels(flag.CommandLine)
	flag.Parse()
	doc, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		cli.Fatal("benchjson", err)
	}
	doc.Labels = labels()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		cli.Fatal("benchjson", err)
	}
}
